package sim

import (
	"nextgenmalloc/internal/cache"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/tlb"
)

// This file implements the time-warp fast path for wait loops: the host
// stops stepping through provably-identical polling rounds and applies
// their combined effect arithmetically.
//
// The correctness argument rests on one scheduler invariant: exactly one
// simulated thread runs at a time, and control only transfers at an
// explicit yield inside Thread.step. Between two yields — i.e. within
// one lease — no other thread runs, so simulated memory and every other
// core's model state are frozen. A wait round that (a) performs only
// L1-hit loads, (b) never yields, and (c) produces the exact same
// counter delta as the round before it is therefore a pure function of
// frozen state: every further round inside the same lease is
// bit-identical, and k of them can be applied as arithmetic on the
// counters and the LRU clocks. The replay stops before anything that
// could change the outcome: the lease end (another thread runs), the
// loop's own deadline (WaitSpec.Until), or a declared external event
// horizon such as a fault-stall window start (WaitSpec.Horizon).
//
// Warp never changes what is simulated — only how fast the host gets
// there. The golden suite runs with warp on, and the deep-equality tests
// in warp_test.go compare entire warp-on and warp-off results.

// warpWarmup is the number of rounds a WarpLoop call executes before it
// starts snapshotting for steadiness detection, so short waits (a client
// whose response arrives within a few polls) pay no detection overhead.
const warpWarmup = 3

// Backoff for busy loops: a Round that does real work (the server
// serving requests) is never going to fingerprint clean, and paying two
// counter snapshots per round on it erases the savings warp buys on the
// idle windows. After warpDirtyLimit consecutive dirty fingerprints the
// detector stops snapshotting and doubles a plain-round backoff up to
// warpMaxBackoff. Long idle windows still engage within ~one backoff
// span; windows shorter than that were barely profitable to skip.
const (
	warpDirtyLimit = 2
	warpMaxBackoff = 32
)

// WaitSpec declares one wait loop to WarpLoop: how to run one round of
// it concretely, what a steady round loads, and which boundaries cap a
// bulk skip.
type WaitSpec struct {
	// Round executes one iteration of the real loop body and reports
	// whether the wait is over. It must be exactly the code the
	// unwarped loop would run — WarpLoop calls it for every round it
	// does not skip, including all unsteady ones.
	Round func() bool

	// Addrs returns the virtual addresses the steady round loads, in
	// issue order (duplicates allowed). It is consulted only when a bulk
	// skip is about to be applied, and its length must equal the steady
	// round's load count or the skip is abandoned. Nil disables warp for
	// this loop.
	Addrs func() []uint64

	// Until, when nonzero, is the loop's exclusive deadline: rounds run
	// only while Thread.Clock() < Until, and skipped rounds must start
	// below it too. This models `for t.Clock() < deadline { ... }`.
	Until uint64

	// Horizon, when non-nil, returns an exclusive upper bound on warped
	// round starts (0 = none): a round starting at or past the horizon
	// may take a different path — e.g. a fault-stall window opening —
	// so it must execute concretely. Unlike Until it does not terminate
	// the loop; rounds keep running concretely past it.
	Horizon func() uint64

	// Skipped, when non-nil, is invoked after each bulk skip with the
	// number of rounds skipped and the simulated cycles they covered, so
	// the call site can scale per-round host-side accounting (empty-poll
	// counters and the like) exactly as if the rounds had run.
	Skipped func(rounds, cycles uint64)
}

// warpSnap is the per-round state fingerprint: everything a clean wait
// round is allowed to change, in absolute cumulative form.
type warpSnap struct {
	clock        uint64
	instr        uint64
	atomics      uint64
	kernelCycles uint64
	cache        cache.CoreStats
	tlb          tlb.Stats
}

// snapInto fills dst in place: the fingerprint is taken once per
// concrete round in a steady wait, so it must not copy the 136-byte
// struct around.
func (t *Thread) snapInto(dst *warpSnap) {
	dst.clock = t.clock
	dst.instr = t.instr
	dst.atomics = t.atomics
	dst.kernelCycles = t.kernelCycles
	dst.cache = t.caches.Stats(t.core)
	dst.tlb = t.tlb.Stats()
}

// sub returns the per-round delta between two snapshots.
func (s *warpSnap) sub(o *warpSnap) warpSnap {
	return warpSnap{
		clock:        s.clock - o.clock,
		instr:        s.instr - o.instr,
		atomics:      s.atomics - o.atomics,
		kernelCycles: s.kernelCycles - o.kernelCycles,
		cache: cache.CoreStats{
			Loads:          s.cache.Loads - o.cache.Loads,
			Stores:         s.cache.Stores - o.cache.Stores,
			L1Misses:       s.cache.L1Misses - o.cache.L1Misses,
			L2Misses:       s.cache.L2Misses - o.cache.L2Misses,
			LLCLoadMisses:  s.cache.LLCLoadMisses - o.cache.LLCLoadMisses,
			LLCStoreMisses: s.cache.LLCStoreMisses - o.cache.LLCStoreMisses,
			Invalidations:  s.cache.Invalidations - o.cache.Invalidations,
			DirtyTransfers: s.cache.DirtyTransfers - o.cache.DirtyTransfers,
		},
		tlb: tlb.Stats{
			LoadHits:    s.tlb.LoadHits - o.tlb.LoadHits,
			LoadMisses:  s.tlb.LoadMisses - o.tlb.LoadMisses,
			StoreHits:   s.tlb.StoreHits - o.tlb.StoreHits,
			StoreMisses: s.tlb.StoreMisses - o.tlb.StoreMisses,
			STLBHits:    s.tlb.STLBHits - o.tlb.STLBHits,
		},
	}
}

// clean reports whether a round delta is replayable: pure L1-hit loads
// (each translating through an L1 TLB hit), forward clock progress, and
// nothing that moves non-replayed model state — no stores, misses,
// fills, coherence traffic, atomics, or kernel work. A round with zero
// loads is rejected too: it touched no memory the detector can certify,
// and the pure-Pause rounds it would describe (fault-stall chunks) carry
// undeclared per-round host accounting.
func (d warpSnap) clean() bool {
	return d.clock > 0 &&
		d.cache.Loads > 0 &&
		d.instr >= d.cache.Loads &&
		d.cache.Stores == 0 &&
		d.cache.L1Misses == 0 &&
		d.cache.L2Misses == 0 &&
		d.cache.LLCLoadMisses == 0 &&
		d.cache.LLCStoreMisses == 0 &&
		d.cache.Invalidations == 0 &&
		d.cache.DirtyTransfers == 0 &&
		d.tlb.LoadHits == d.cache.Loads &&
		d.tlb.LoadMisses == 0 &&
		d.tlb.StoreHits == 0 &&
		d.tlb.StoreMisses == 0 &&
		d.tlb.STLBHits == 0 &&
		d.atomics == 0 &&
		d.kernelCycles == 0
}

// WarpLoop runs a declared wait loop: `for Until unreached { if Round()
// { return } }`, with the time-warp fast path applied when the machine
// was configured with Warp. Behaviour — every counter, every yield,
// every scheduling decision — is bit-identical with and without warp;
// only the host work differs.
//
// Detection: after a short warm-up, WarpLoop fingerprints each round.
// Two consecutive rounds inside one lease (no yield) with identical
// clean deltas prove the loop is in a steady state over frozen memory;
// the rounds that remain below every cap (lease end, Until, Horizon)
// are then applied arithmetically and the loop continues concretely.
func (t *Thread) WarpLoop(s WaitSpec) {
	if s.Round == nil {
		panic("sim: WarpLoop needs a Round")
	}
	if !t.m.cfg.Warp || s.Addrs == nil {
		for s.Until == 0 || t.clock < s.Until {
			if s.Round() {
				return
			}
		}
		return
	}
	var (
		rounds   uint64      // concrete rounds executed by this call
		snaps    [2]warpSnap // double-buffered fingerprints (no copies)
		cur      = &snaps[0] // snapshot at the current loop position
		prev     = &snaps[1]
		curOK    bool     // cur describes the state after the last round
		tmpl     warpSnap // candidate steady-round delta
		tmplOK   bool
		disabled bool // Addrs declaration failed verification: stop trying
		dirty    int  // consecutive dirty fingerprints
		skip     int  // plain rounds left before fingerprinting resumes
	)
	for s.Until == 0 || t.clock < s.Until {
		if disabled || rounds < warpWarmup || skip > 0 {
			if s.Round() {
				return
			}
			rounds++
			if skip > 0 {
				skip--
				curOK = false
			}
			continue
		}
		if !curOK {
			t.snapInto(cur)
			curOK = true
		}
		prev, cur = cur, prev
		yields := t.yields
		if s.Round() {
			return
		}
		rounds++
		t.snapInto(cur)
		d := cur.sub(prev)
		if t.yields != yields || !d.clean() {
			// A yield means another thread may have written memory; an
			// unclean round did real work. Either way the steady state
			// (if any) must be re-proven from scratch — and a loop that
			// keeps fingerprinting dirty is doing real work every round,
			// so back off the detector rather than tax it.
			tmplOK = false
			if dirty++; dirty >= warpDirtyLimit {
				skip = min(4<<(dirty-warpDirtyLimit), warpMaxBackoff)
			}
			continue
		}
		dirty = 0
		if !tmplOK || d != tmpl {
			tmpl, tmplOK = d, true
			continue
		}
		k := t.warpBudget(&s, tmpl.clock)
		if k == 0 {
			continue
		}
		addrs := s.Addrs()
		if uint64(len(addrs)) != tmpl.cache.Loads || !t.warpApply(addrs, tmpl, k) {
			disabled = true
			tmplOK = false
			continue
		}
		if s.Skipped != nil {
			s.Skipped(k, k*tmpl.clock)
		}
		t.snapInto(cur)
	}
}

// warpBudget returns how many steady rounds of cost rc may be skipped
// from the current clock: every skipped round must have run yield-free
// under the current lease and started strictly below Until and the
// event horizon. Returns 0 when nothing bounds the skip (a sole live
// thread with no deadline must keep polling concretely) or when a bound
// has already been reached.
func (t *Thread) warpBudget(s *WaitSpec, rc uint64) uint64 {
	k := ^uint64(0)
	bounded := false
	if t.lease != ^uint64(0) {
		if t.clock > t.lease {
			return 0 // the next step() yields; nothing to skip here
		}
		// Round j ends at clock + j*rc; it is yield-free iff every step
		// inside it sees clock <= lease, which holds when the round ends
		// at lease+1 or earlier.
		k = (t.lease + 1 - t.clock) / rc
		bounded = true
	}
	if s.Until != 0 {
		if t.clock >= s.Until {
			return 0
		}
		if n := (s.Until-1-t.clock)/rc + 1; n < k {
			k = n
		}
		bounded = true
	}
	if s.Horizon != nil {
		if h := s.Horizon(); h != 0 {
			if t.clock >= h {
				return 0
			}
			if n := (h-1-t.clock)/rc + 1; n < k {
				k = n
			}
			bounded = true
		}
	}
	if !bounded {
		return 0
	}
	return k
}

// warpApply replays k steady rounds: it resolves the declared load
// sequence to concrete L1 ways (pure probes — any residency mismatch
// abandons the skip) and advances the clock, instruction count, PMU
// demand counters, and LRU clocks to exactly the state k concrete
// rounds would leave. See cache.ReplayL1Loads / tlb.ReplayL1LoadHits
// for the stamp arithmetic.
func (t *Thread) warpApply(addrs []uint64, d warpSnap, k uint64) bool {
	if cap(t.warpIdxs) < len(addrs) {
		t.warpIdxs = make([]int, len(addrs))
		t.warpWays = make([]int, len(addrs))
		t.warpCls = make([]region.Class, len(addrs))
	}
	idxs := t.warpIdxs[:len(addrs)]
	ways := t.warpWays[:len(addrs)]
	cls := t.warpCls[:len(addrs)]
	for i, va := range addrs {
		e := t.translate(va)
		paddr := e.base | va&mem.PageMask
		ci := t.caches.ProbeL1(t.core, paddr>>cache.LineShift)
		wi := t.tlb.ProbeL1Way(va, uint(e.shift))
		if ci < 0 || wi < 0 {
			return false
		}
		idxs[i] = ci
		ways[i] = wi
		cls[i] = e.class(va)
	}
	t.caches.ReplayL1Loads(t.core, idxs, cls, k)
	t.tlb.ReplayL1LoadHits(ways, k)
	t.clock += k * d.clock
	t.instr += k * d.instr
	t.m.noteWarp(k, k*d.clock)
	return true
}
