package sim

import (
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
)

// The region table maps virtual addresses to address classes
// (region.Class) at 16-byte granularity — fine enough to separate a
// PTMalloc2-style inline chunk header from the user payload sharing its
// cache line, which is exactly the aggregated-layout pollution the
// paper's Figure 2 describes.
//
// The table is host-side observability state: reading or writing it
// never advances the simulated clock or any PMU counter. Because the
// simulated kernel only ever hands out fresh virtual addresses
// (mem.AddressSpace's bump pointers; see the epoch comment there), a
// page's class array can be cached for the page's whole lifetime and
// never goes stale across munmap.
const (
	granuleShift = 4 // 16-byte granules: the smallest allocator alignment
	pageGranules = mem.PageSize >> granuleShift
)

// pageClasses holds the class of every 16-byte granule of one 4 KiB page.
type pageClasses [pageGranules]region.Class

// RegionTable is the per-machine address-class map.
type RegionTable struct {
	pages map[uint64]*pageClasses // vpn -> granule classes
}

func newRegionTable() *RegionTable {
	return &RegionTable{pages: make(map[uint64]*pageClasses)}
}

// staticClass is the class an address has before anything marks it: the
// dedicated metadata range is Meta by construction (NextGen's segregated
// region, §3.1.2), everything else defaults to User.
func staticClass(vaddr uint64) region.Class {
	if vaddr >= mem.MetaBase && vaddr < mem.MmapBase {
		return region.Meta
	}
	return region.User
}

// page returns (creating on first touch) the class array for the page
// containing vaddr.
func (rt *RegionTable) page(vaddr uint64) *pageClasses {
	vpn := vaddr >> mem.PageShift
	p := rt.pages[vpn]
	if p == nil {
		p = new(pageClasses)
		if def := staticClass(vaddr); def != region.User {
			for i := range p {
				p[i] = def
			}
		}
		rt.pages[vpn] = p
	}
	return p
}

// Mark sets the class of [vaddr, vaddr+n). Partial granules at either
// end are rounded outward (allocator structures are at least 16-byte
// aligned in practice, so rounding only matters for odd test inputs).
func (rt *RegionTable) Mark(vaddr uint64, n int, cls region.Class) {
	if n <= 0 {
		return
	}
	end := vaddr + uint64(n)
	g := vaddr &^ (1<<granuleShift - 1)
	for g < end {
		p := rt.page(g)
		i := (g & mem.PageMask) >> granuleShift
		pageEnd := (g | mem.PageMask) + 1
		for ; g < end && g < pageEnd; g += 1 << granuleShift {
			p[i] = cls
			i++
		}
	}
}

// Classify returns the class of the granule containing vaddr.
func (rt *RegionTable) Classify(vaddr uint64) region.Class {
	return rt.page(vaddr)[(vaddr&mem.PageMask)>>granuleShift]
}

// ClassCounters are the attribution counters for one address class:
// the subset of Counters that is tied to specific addresses (demand
// traffic, cache misses, TLB walks).
type ClassCounters struct {
	Loads           uint64
	Stores          uint64
	L1Misses        uint64
	LLCLoadMisses   uint64
	LLCStoreMisses  uint64
	DTLBLoadMisses  uint64
	DTLBStoreMisses uint64
}

// Add accumulates o into c.
func (c *ClassCounters) Add(o ClassCounters) {
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.L1Misses += o.L1Misses
	c.LLCLoadMisses += o.LLCLoadMisses
	c.LLCStoreMisses += o.LLCStoreMisses
	c.DTLBLoadMisses += o.DTLBLoadMisses
	c.DTLBStoreMisses += o.DTLBStoreMisses
}

// Sub returns c - o, field-wise.
func (c ClassCounters) Sub(o ClassCounters) ClassCounters {
	return ClassCounters{
		Loads:           c.Loads - o.Loads,
		Stores:          c.Stores - o.Stores,
		L1Misses:        c.L1Misses - o.L1Misses,
		LLCLoadMisses:   c.LLCLoadMisses - o.LLCLoadMisses,
		LLCStoreMisses:  c.LLCStoreMisses - o.LLCStoreMisses,
		DTLBLoadMisses:  c.DTLBLoadMisses - o.DTLBLoadMisses,
		DTLBStoreMisses: c.DTLBStoreMisses - o.DTLBStoreMisses,
	}
}

// ClassBreakdown is one counter set per address class, indexed by
// region.Class.
type ClassBreakdown [region.NumClasses]ClassCounters

// Add accumulates o into b, class-wise.
func (b *ClassBreakdown) Add(o ClassBreakdown) {
	for i := range b {
		b[i].Add(o[i])
	}
}

// Sub returns b - o, class-wise.
func (b ClassBreakdown) Sub(o ClassBreakdown) ClassBreakdown {
	var out ClassBreakdown
	for i := range b {
		out[i] = b[i].Sub(o[i])
	}
	return out
}

// CoreClassCounters assembles the per-class attribution snapshot for one
// core from the cache and TLB models. Like CoreCounters it may be read
// mid-run; unlike it there is no live-thread component (all per-class
// state lives in the shared models).
func (m *Machine) CoreClassCounters(core int) ClassBreakdown {
	cs := m.caches.ClassStats(core)
	ts := m.tlbs[core].ClassStats()
	var b ClassBreakdown
	for i := range b {
		b[i] = ClassCounters{
			Loads:           cs[i].Loads,
			Stores:          cs[i].Stores,
			L1Misses:        cs[i].L1Misses,
			LLCLoadMisses:   cs[i].LLCLoadMisses,
			LLCStoreMisses:  cs[i].LLCStoreMisses,
			DTLBLoadMisses:  ts[i].LoadMisses,
			DTLBStoreMisses: ts[i].StoreMisses,
		}
	}
	return b
}

// Regions returns the machine's address-class table (host-side; safe to
// read or mark from outside the simulation).
func (m *Machine) Regions() *RegionTable { return m.regions }

// MarkRegion classifies [vaddr, vaddr+n) for miss attribution. It is
// host-side bookkeeping: no simulated instructions, cycles, or memory
// traffic result, so calling it cannot perturb the PMU counters.
func (t *Thread) MarkRegion(vaddr uint64, n int, cls region.Class) {
	t.m.regions.Mark(vaddr, n, cls)
}

// ClassCounters returns this core's per-class attribution counters as of
// now (usable mid-run by the owning thread, like Counters).
func (t *Thread) ClassCounters() ClassBreakdown {
	return t.m.CoreClassCounters(t.core)
}
