package sim

import (
	"testing"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	return cfg
}

func TestExecAdvancesClockAndInstructions(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) {
		th.Exec(100)
		if th.Clock() != 100 || th.Instructions() != 100 {
			t.Errorf("clock=%d instr=%d, want 100/100", th.Clock(), th.Instructions())
		}
	})
	m.Run()
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) {
		base := th.Mmap(1)
		th.Store64(base, 0xdeadbeefcafef00d)
		if got := th.Load64(base); got != 0xdeadbeefcafef00d {
			t.Errorf("Load64 = %#x", got)
		}
		th.Store16(base+8, 0x1234)
		if got := th.Load16(base + 8); got != 0x1234 {
			t.Errorf("Load16 = %#x", got)
		}
	})
	m.Run()
}

func TestUnalignedAccessPanics(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) {
		base := th.Mmap(1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on unaligned access")
			}
		}()
		th.Load64(base + 3)
	})
	m.Run()
}

func TestAtomicCost(t *testing.T) {
	cfg := testCfg()
	m := New(cfg)
	m.Spawn("t", 0, func(th *Thread) {
		base := th.Mmap(1)
		th.Load64(base) // warm the line
		before := th.Clock()
		if !th.CAS64(base, 0, 7) {
			t.Error("CAS on zeroed word failed")
		}
		// L1 write hit (4, after upgrade from the read's E state: silent)
		// plus the configured atomic extra.
		want := 4 + cfg.AtomicExtraCycles
		if got := th.Clock() - before; got != want {
			t.Errorf("atomic cost %d, want %d", got, want)
		}
		if th.Load64(base) != 7 {
			t.Error("CAS did not store")
		}
		if th.CAS64(base, 0, 9) {
			t.Error("CAS with wrong expected value succeeded")
		}
		if th.FetchAdd64(base, 3) != 7 || th.Load64(base) != 10 {
			t.Error("FetchAdd64 wrong")
		}
		if th.Swap64(base, 1) != 10 || th.Load64(base) != 1 {
			t.Error("Swap64 wrong")
		}
	})
	m.Run()
}

func TestInterleavingIsDeterministic(t *testing.T) {
	runOnce := func() [2]uint64 {
		m := New(testCfg())
		shared, _ := m.Kernel().Mmap(1)
		var order [2]uint64
		for i := 0; i < 2; i++ {
			part := i
			m.Spawn("t", part, func(th *Thread) {
				for k := 0; k < 1000; k++ {
					th.FetchAdd64(shared, 1)
					th.Exec(7 * (part + 1))
				}
				order[part] = th.Clock()
			})
		}
		m.Run()
		return order
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("nondeterministic interleaving: %v vs %v", a, b)
	}
}

func TestSharedCounterSumsCorrectly(t *testing.T) {
	m := New(testCfg())
	shared, _ := m.Kernel().Mmap(1)
	const n, per = 4, 500
	for i := 0; i < n; i++ {
		m.Spawn("t", i, func(th *Thread) {
			for k := 0; k < per; k++ {
				th.FetchAdd64(shared, 1)
			}
		})
	}
	m.Run()
	// Read back via physical memory.
	paddr, _ := m.AddressSpace().Translate(shared)
	if got := m.AddressSpace().Phys().Load(paddr, 8); got != n*per {
		t.Errorf("shared counter = %d, want %d", got, n*per)
	}
}

func TestDaemonStopsWithMachine(t *testing.T) {
	m := New(testCfg())
	polls := 0
	m.SpawnDaemon("d", 3, func(th *Thread) {
		for !th.Stopping() {
			polls++
			th.Pause(50)
		}
	})
	m.Spawn("t", 0, func(th *Thread) { th.Exec(5000) })
	m.Run()
	if polls == 0 {
		t.Error("daemon never ran")
	}
}

func TestCountersAttribution(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 2, func(th *Thread) {
		base := th.Mmap(4)
		for i := uint64(0); i < 64; i++ {
			th.Store64(base+i*64, i) // one store per line
		}
	})
	m.Run()
	c2 := m.CoreCounters(2)
	if c2.Stores != 64 {
		t.Errorf("core 2 stores = %d, want 64", c2.Stores)
	}
	if c0 := m.CoreCounters(0); c0.Instructions != 0 {
		t.Errorf("idle core 0 retired %d instructions", c0.Instructions)
	}
	tot := m.TotalCounters()
	if tot.Stores != 64 {
		t.Errorf("total stores = %d", tot.Stores)
	}
}

func TestBlockReadWrite(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) {
		base := th.Mmap(1)
		th.BlockWrite(base, 100, 0x11)
		sum := th.BlockRead(base, 100)
		if sum == 0 {
			t.Error("BlockRead of written region returned 0")
		}
		// Odd sizes must not touch past the end.
		th.BlockWrite(base+4000, 96, 0xff)
	})
	m.Run()
}

func TestCountersSubAdd(t *testing.T) {
	a := Counters{Cycles: 100, Instructions: 50, LLCLoadMisses: 7}
	b := Counters{Cycles: 40, Instructions: 20, LLCLoadMisses: 3}
	d := a.Sub(b)
	if d.Cycles != 60 || d.Instructions != 30 || d.LLCLoadMisses != 4 {
		t.Errorf("Sub wrong: %+v", d)
	}
	var s Counters
	s.Add(a)
	s.Add(b)
	if s.Cycles != 140 {
		t.Errorf("Add wrong: %+v", s)
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(500, 1000000); got != 0.5 {
		t.Errorf("MPKI = %v", got)
	}
	if got := MPKI(5, 0); got != 0 {
		t.Errorf("MPKI with zero instructions = %v", got)
	}
}

func TestSpawnValidation(t *testing.T) {
	m := New(testCfg())
	m.Spawn("a", 0, func(*Thread) {})
	for _, fn := range []func(){
		func() { m.Spawn("b", 0, func(*Thread) {}) },  // occupied core
		func() { m.Spawn("c", 99, func(*Thread) {}) }, // bad core
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestHugepageTranslation: accesses within one 2 MiB mapping share a
// single TLB entry, so only the first access walks.
func TestHugepageTranslation(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) {
		base := th.MmapHuge(512)
		for i := uint64(0); i < 32; i++ {
			th.Load64(base + i*65536) // 32 spots across the 2 MiB page
		}
	})
	m.Run()
	c := m.CoreCounters(0)
	if c.DTLBLoadMisses != 1 {
		t.Errorf("dTLB misses = %d, want 1 (single huge entry)", c.DTLBLoadMisses)
	}
}

// TestFourKMappingWalksPerPage: the same pattern on 4 KiB pages walks
// once per page.
func TestFourKMappingWalksPerPage(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) {
		base := th.Mmap(512)
		for i := uint64(0); i < 32; i++ {
			th.Load64(base + i*65536) // 32 distinct 4 KiB pages
		}
	})
	m.Run()
	if c := m.CoreCounters(0); c.DTLBLoadMisses != 32 {
		t.Errorf("dTLB misses = %d, want 32", c.DTLBLoadMisses)
	}
}

// TestKernelCyclesCharged: syscalls advance the caller's clock by the
// kernel's reported cost.
func TestKernelCyclesCharged(t *testing.T) {
	cfg := testCfg()
	m := New(cfg)
	m.Spawn("t", 0, func(th *Thread) {
		before := th.Clock()
		th.Mmap(4)
		want := cfg.Syscall.ModeSwitch + 4*cfg.Syscall.PerPage
		if got := th.Clock() - before; got != want {
			t.Errorf("mmap cost %d, want %d", got, want)
		}
	})
	m.Run()
	if c := m.CoreCounters(0); c.KernelCycles == 0 {
		t.Error("kernel cycles not attributed")
	}
}

// TestMunmapInvalidatesTLB: a stale translation never survives munmap.
func TestMunmapInvalidatesTLB(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) {
		base := th.Mmap(1)
		th.Store64(base, 1)
		th.Munmap(base, 1)
		defer func() {
			if recover() == nil {
				t.Error("access to unmapped page did not fault")
			}
		}()
		th.Load64(base)
	})
	m.Run()
}
