package sim

import (
	"testing"

	"nextgenmalloc/internal/region"
)

// Host benchmarks for the Thread memory-op path: TLB model + translation
// + cache model + backing store, the full per-access cost of the engine.

// benchThread runs body inside a 1-thread machine with npages mapped and
// returns the base address of the mapping.
func benchThread(b *testing.B, npages int, body func(t *Thread, base uint64)) {
	cfg := DefaultConfig()
	cfg.Cores = 1
	m := New(cfg)
	base, _ := m.Kernel().Mmap(npages)
	m.Spawn("bench", 0, func(t *Thread) {
		body(t, base)
	})
	m.Run()
}

// BenchmarkThreadLoad64Same is the absolute fast path: same word, L1 and
// TLB resident.
func BenchmarkThreadLoad64Same(b *testing.B) {
	benchThread(b, 4, func(t *Thread, base uint64) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Load64(base)
		}
	})
}

// BenchmarkThreadLoad64Walk strides across 64 pages at one load per
// line, exercising the TLB and translation machinery.
func BenchmarkThreadLoad64Walk(b *testing.B) {
	const npages = 64
	benchThread(b, npages, func(t *Thread, base uint64) {
		span := uint64(npages) << 12
		b.ReportAllocs()
		b.ResetTimer()
		var off uint64
		for i := 0; i < b.N; i++ {
			t.Load64(base + off)
			off = (off + 64) % span
		}
	})
}

// BenchmarkThreadStore64Stride is the store twin.
func BenchmarkThreadStore64Stride(b *testing.B) {
	const npages = 64
	benchThread(b, npages, func(t *Thread, base uint64) {
		span := uint64(npages) << 12
		b.ReportAllocs()
		b.ResetTimer()
		var off uint64
		for i := 0; i < b.N; i++ {
			t.Store64(base+off, uint64(i))
			off = (off + 64) % span
		}
	})
}

// BenchmarkRegionClassify measures the host cost of the region-table
// granule lookup that attributes every miss to an address class (the
// PR 2 telemetry left this unmeasured).
func BenchmarkRegionClassify(b *testing.B) {
	rt := newRegionTable()
	const npages = 16
	span := uint64(npages) << 12
	rt.Mark(0, int(span/2), region.Ring)
	rt.Mark(span/2, int(span/2), region.Meta)
	b.ReportAllocs()
	b.ResetTimer()
	var off uint64
	var sink region.Class
	for i := 0; i < b.N; i++ {
		sink = rt.Classify(off)
		off = (off + 16) % span
	}
	_ = sink
}

// BenchmarkThreadLoad64SameMarked is BenchmarkThreadLoad64Same on a
// page carrying a non-default region mark: the attributed fast path.
func BenchmarkThreadLoad64SameMarked(b *testing.B) {
	benchThread(b, 4, func(t *Thread, base uint64) {
		t.MarkRegion(base, 4<<12, region.Ring)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Load64(base)
		}
	})
}

// BenchmarkThreadBlockWrite measures the memset-like path workloads use
// to touch allocated objects (256 B per op).
func BenchmarkThreadBlockWrite(b *testing.B) {
	benchThread(b, 4, func(t *Thread, base uint64) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.BlockWrite(base, 256, uint64(i))
		}
	})
}

// BenchmarkThreadBlockRead is the checksum-read twin.
func BenchmarkThreadBlockRead(b *testing.B) {
	benchThread(b, 4, func(t *Thread, base uint64) {
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += t.BlockRead(base, 256)
		}
		_ = sink
	})
}
