// Package sim is the execution-driven multicore simulator that everything
// else runs on: cores with private caches and TLBs, a shared LLC with
// directory coherence, a deterministic cooperative scheduler, and a
// Thread API through which allocators and workloads issue every
// instruction and memory access they perform.
//
// The paper's evaluation is a set of PMU counter tables; this package is
// the PMU. Cycles, instructions, LLC-load/store-misses and
// dTLB-load/store-misses are accumulated per core exactly as perf would
// attribute them.
package sim

import (
	"nextgenmalloc/internal/cache"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/tlb"
)

// CoreProfile selects the private-cache geometry and memory latency of a
// core. The paper's §3.2 asks whether the allocator's "room" should be a
// big general-purpose core or a small near-memory core; these profiles
// are that knob.
type CoreProfile struct {
	Cache cache.Config
	TLB   tlb.Config
}

// BigCoreProfile is a contemporary out-of-order server core.
func BigCoreProfile() CoreProfile {
	return CoreProfile{Cache: cache.DefaultConfig(), TLB: tlb.DefaultConfig()}
}

// NearMemoryProfile is a small in-order core stacked near DRAM: a tiny
// L1, no L2, and much lower memory latency (paper §3.2: "a small (micro)
// cache for buffering metadata", "lower memory access latencies").
func NearMemoryProfile() CoreProfile {
	c := cache.DefaultConfig()
	c.L1Size = 8 << 10
	c.L1Ways = 4
	c.L2Size = 0
	c.MemCycles = 80
	t := tlb.DefaultConfig()
	t.L1Entries = 32
	t.L2Entries = 0
	return CoreProfile{Cache: c, TLB: t}
}

// Config describes a machine.
type Config struct {
	// Cores is the number of cores (default 16, the paper's AWS-A1 box).
	Cores int
	// Profile is the default core profile.
	Profile CoreProfile
	// CoreOverrides substitutes profiles for specific core IDs.
	CoreOverrides map[int]CoreProfile
	// Syscall is the kernel crossing cost model.
	Syscall mem.SyscallCosts
	// AtomicExtraCycles is added on top of the cache access for a locked
	// RMW; with the 4-cycle L1 hit this lands on the paper's 67-cycle
	// Atomic Read-Modify-Write figure [3].
	AtomicExtraCycles uint64
	// FenceCycles is the cost of a full memory barrier.
	FenceCycles uint64
	// Quantum is the scheduler lease slack in cycles; smaller values
	// interleave threads more finely at higher simulation cost.
	Quantum uint64
	// Warp enables the time-warp fast path for declared wait loops
	// (Thread.WarpLoop): once a wait round is observed to be steady, the
	// remaining rounds that fit inside the current lease are applied
	// arithmetically instead of being executed on the host. Every
	// counter, clock, and scheduling decision is bit-identical either
	// way — warp only removes host work, never simulated work — so the
	// golden suite runs with it on. The zero value (off) preserves the
	// fully-stepped engine for A/B verification.
	Warp bool
}

// DefaultConfig mirrors the paper's 16-core evaluation machine.
func DefaultConfig() Config {
	return Config{
		Cores:             16,
		Profile:           BigCoreProfile(),
		Syscall:           mem.DefaultSyscallCosts(),
		AtomicExtraCycles: 63,
		FenceCycles:       20,
		// 96-cycle leases keep cross-core event skew below the LLC
		// round-trip time, so polling cores observe requests with
		// realistic latency (coarser leases would inflate every
		// cross-core interaction by the lease length).
		Quantum: 64,
		Warp:    true,
	}
}

// ScaledConfig is the experiment machine: the cache and TLB capacities
// are scaled down by ~4x so that the scaled-down workloads (hundreds of
// thousands of allocator calls instead of the paper's 2.8e8, tens of MB
// of heap instead of GBs) exert the same *relative* pressure on the
// hierarchy that the full-size workloads exert on the full-size
// hierarchy. Latencies are unchanged. This is the standard scaling
// methodology for sampled simulation; EXPERIMENTS.md records it with
// every table.
func ScaledConfig() Config {
	cfg := DefaultConfig()
	cfg.Profile.Cache.L1Size = 8 << 10
	cfg.Profile.Cache.L2Size = 32 << 10
	cfg.Profile.Cache.LLCSize = 1 << 20
	cfg.Profile.TLB.L1Entries = 32
	cfg.Profile.TLB.L2Entries = 256
	cfg.Profile.TLB.L2Ways = 8
	return cfg
}

// Counters is the PMU snapshot for one core (or a sum over cores).
type Counters struct {
	Cycles          uint64
	Instructions    uint64
	Loads           uint64
	Stores          uint64
	L1Misses        uint64
	L2Misses        uint64
	LLCLoadMisses   uint64
	LLCStoreMisses  uint64
	DTLBLoadMisses  uint64
	DTLBStoreMisses uint64
	STLBHits        uint64
	AtomicOps       uint64
	Invalidations   uint64
	DirtyTransfers  uint64
	KernelCycles    uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Cycles += o.Cycles
	c.Instructions += o.Instructions
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.L1Misses += o.L1Misses
	c.L2Misses += o.L2Misses
	c.LLCLoadMisses += o.LLCLoadMisses
	c.LLCStoreMisses += o.LLCStoreMisses
	c.DTLBLoadMisses += o.DTLBLoadMisses
	c.DTLBStoreMisses += o.DTLBStoreMisses
	c.STLBHits += o.STLBHits
	c.AtomicOps += o.AtomicOps
	c.Invalidations += o.Invalidations
	c.DirtyTransfers += o.DirtyTransfers
	c.KernelCycles += o.KernelCycles
}

// Sub returns c minus o field-wise (for interval measurements).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Cycles:          c.Cycles - o.Cycles,
		Instructions:    c.Instructions - o.Instructions,
		Loads:           c.Loads - o.Loads,
		Stores:          c.Stores - o.Stores,
		L1Misses:        c.L1Misses - o.L1Misses,
		L2Misses:        c.L2Misses - o.L2Misses,
		LLCLoadMisses:   c.LLCLoadMisses - o.LLCLoadMisses,
		LLCStoreMisses:  c.LLCStoreMisses - o.LLCStoreMisses,
		DTLBLoadMisses:  c.DTLBLoadMisses - o.DTLBLoadMisses,
		DTLBStoreMisses: c.DTLBStoreMisses - o.DTLBStoreMisses,
		STLBHits:        c.STLBHits - o.STLBHits,
		AtomicOps:       c.AtomicOps - o.AtomicOps,
		Invalidations:   c.Invalidations - o.Invalidations,
		DirtyTransfers:  c.DirtyTransfers - o.DirtyTransfers,
		KernelCycles:    c.KernelCycles - o.KernelCycles,
	}
}

// MPKI returns misses per kilo-instruction for a counter value.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instructions)
}
