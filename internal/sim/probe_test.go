package sim

import "testing"

// TestAddProbeOrder pins the chaining contract: probes fire in
// installation order, every lease, whether installed via SetProbe or
// chained with AddProbe.
func TestAddProbeOrder(t *testing.T) {
	m := New(testCfg())
	m.Spawn("a", 0, func(th *Thread) { th.Exec(500) })
	m.Spawn("b", 1, func(th *Thread) { th.Exec(500) })

	var order []int
	m.SetProbe(func(wall uint64) { order = append(order, 0) })
	m.AddProbe(func(wall uint64) { order = append(order, 1) })
	m.AddProbe(func(wall uint64) { order = append(order, 2) })
	m.Run()

	if len(order) == 0 || len(order)%3 != 0 {
		t.Fatalf("probe fired %d times, want a positive multiple of 3", len(order))
	}
	for i, got := range order {
		if got != i%3 {
			t.Fatalf("firing %d came from probe %d, want %d (order %v...)",
				i, got, i%3, order[:i+1])
		}
	}
}

// TestAddProbeWithoutSetProbe pins that AddProbe on a bare machine
// installs rather than panics or drops.
func TestAddProbeWithoutSetProbe(t *testing.T) {
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) { th.Exec(100) })
	fired := 0
	m.AddProbe(func(wall uint64) { fired++ })
	m.Run()
	if fired == 0 {
		t.Fatal("AddProbe as the first installer never fired")
	}
}

// TestProbeInstallAfterRunPanics pins that both installers reject a
// machine that has started: late installation would silently miss
// leases, so it must fail loudly and consistently for both entry
// points.
func TestProbeInstallAfterRunPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after Run did not panic", name)
			}
		}()
		fn()
	}
	m := New(testCfg())
	m.Spawn("t", 0, func(th *Thread) { th.Exec(10) })
	m.Run()
	mustPanic("SetProbe", func() { m.SetProbe(func(uint64) {}) })
	mustPanic("AddProbe", func() { m.AddProbe(func(uint64) {}) })
}

// TestProbeCadenceSurvivesWarp pins the documented warp interaction:
// probes fire at every warp landing (lease end) and never inside a
// skipped window, so the observed wall sequence is bit-identical with
// the time warp on and off — even when a thread spends most of the run
// in a warpable wait.
func TestProbeCadenceSurvivesWarp(t *testing.T) {
	walls := func(warp bool) []uint64 {
		cfg := testCfg()
		cfg.Warp = warp
		m := New(cfg)
		flag, _ := m.Kernel().Mmap(1)
		m.Spawn("producer", 0, func(th *Thread) {
			th.Exec(20000)
			th.AtomicStore64(flag, 1)
		})
		m.Spawn("waiter", 1, func(th *Thread) {
			th.WarpLoop(WaitSpec{
				Round: func() bool {
					if th.AtomicLoad64(flag) == 1 {
						return true
					}
					th.Pause(8)
					return false
				},
				Addrs: func() []uint64 { return []uint64{flag} },
			})
		})
		var seq []uint64
		m.AddProbe(func(wall uint64) { seq = append(seq, wall) })
		m.Run()
		if warp && m.WarpStats().Windows == 0 {
			t.Fatal("warp never engaged on the waiter's spin")
		}
		return seq
	}

	off := walls(false)
	on := walls(true)
	if len(off) != len(on) {
		t.Fatalf("probe firing count differs: off=%d on=%d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("probe firing %d saw wall %d with warp, %d without", i, on[i], off[i])
		}
	}
}
