package sim

import (
	"fmt"
	"testing"
)

// BenchmarkMachineRun measures the scheduler itself — heap maintenance,
// lease hand-offs, and (for the idle topology) the time-warp fast path —
// on two topologies:
//
//   - busy: four threads doing wall-to-wall memory work, no wait loops.
//     Warp has nothing to skip here; this pins the scheduler's overhead
//     on compute-bound runs.
//   - idle: a producer computing in long chunks plus a waiter spinning
//     on a flag via WarpLoop. Nearly all of the waiter's simulated time
//     is an idle window bounded by the producer's lease — the shape the
//     cycle-skipping engine exists for; warp=true vs warp=false is the
//     before/after of the pr6 tentpole.
func BenchmarkMachineRun(b *testing.B) {
	for _, topo := range []string{"busy", "idle"} {
		for _, warp := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/warp=%v", topo, warp), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					benchRun(topo, warp)
				}
			})
		}
	}
}

func benchRun(topo string, warp bool) uint64 {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Warp = warp
	m := New(cfg)
	switch topo {
	case "busy":
		for c := 0; c < 4; c++ {
			base, _ := m.Kernel().Mmap(4)
			m.Spawn(fmt.Sprintf("busy%d", c), c, func(t *Thread) {
				for i := 0; i < 4000; i++ {
					t.Store64(base+uint64(i%512)*8, uint64(i))
					t.Load64(base + uint64((i+7)%512)*8)
				}
			})
		}
	case "idle":
		flag, _ := m.Kernel().Mmap(1)
		m.Spawn("producer", 0, func(t *Thread) {
			for i := 0; i < 80; i++ {
				t.Exec(5000)
			}
			t.AtomicStore64(flag, 1)
		})
		m.Spawn("waiter", 1, func(t *Thread) {
			t.WarpLoop(WaitSpec{
				Round: func() bool {
					if t.AtomicLoad64(flag) == 1 {
						return true
					}
					t.Pause(8)
					return false
				},
				Addrs: func() []uint64 { return []uint64{flag} },
			})
		})
	default:
		panic("unknown topology " + topo)
	}
	return m.Run()
}
