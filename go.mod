module nextgenmalloc

go 1.23
